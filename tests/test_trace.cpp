// Trace/telemetry layer: disarmed no-op, virtual-mode determinism (content
// sort, tid normalization, push-order independence), counter snapshots,
// buffer overflow accounting, Chrome JSON shape, stats-block splicing.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "search/telemetry.h"

namespace turret {
namespace {

using trace::Clock;
using trace::ScopedTrace;
using trace::TraceEvent;
using trace::Tracer;

TEST(Trace, DisabledByDefaultAndSpansAreNoOps) {
  ASSERT_FALSE(trace::active());
  {
    trace::Span s("test", "noop");
    s.at(5 * kSecond).lasted(kSecond).arg("k", std::int64_t{1});
  }
  trace::instant("test", "noop", kSecond);
  // Nothing was enabled, so nothing may have been recorded since the last
  // enable (there was none; buffer starts empty).
  EXPECT_TRUE(Tracer::instance().events().empty());
}

TEST(Trace, EnableResetsEventsAndCounters) {
  {
    ScopedTrace t(Clock::kVirtual);
    trace::instant("test", "a", kSecond);
    trace::counters().branch_attempts.fetch_add(7, std::memory_order_relaxed);
  }
  EXPECT_EQ(Tracer::instance().events().size(), 1u);
  ScopedTrace t(Clock::kVirtual);
  EXPECT_TRUE(Tracer::instance().events().empty());
  EXPECT_EQ(Tracer::instance().counters().snapshot().branch_attempts, 0u);
}

TEST(Trace, VirtualSpanStampsVirtualTimeAndTidZero) {
  ScopedTrace t(Clock::kVirtual);
  {
    trace::Span s("test", "branch");
    s.at(3 * kSecond).lasted(2 * kSecond).arg("outcome", "ok");
  }
  const std::vector<TraceEvent> evs = Tracer::instance().events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].name, "branch");
  EXPECT_EQ(evs[0].phase, 'X');
  EXPECT_EQ(evs[0].tid, 0u);
  EXPECT_EQ(evs[0].ts_us, 3 * kSecond / kMicrosecond);
  EXPECT_EQ(evs[0].dur_us, 2 * kSecond / kMicrosecond);
  EXPECT_EQ(evs[0].args, "\"outcome\":\"ok\"");
}

TEST(Trace, VirtualModeSortsByContentNotPushOrder) {
  const auto emit = [](bool reversed) {
    ScopedTrace t(Clock::kVirtual);
    if (reversed) {
      trace::instant("test", "b", 2 * kSecond);
      trace::instant("test", "a", kSecond);
    } else {
      trace::instant("test", "a", kSecond);
      trace::instant("test", "b", 2 * kSecond);
    }
    return Tracer::instance().chrome_json();
  };
  EXPECT_EQ(emit(false), emit(true));
}

TEST(Trace, VirtualModeIdenticalAcrossThreads) {
  // The same event multiset pushed from one thread and from four threads
  // must serialize identically — the property branch spans rely on.
  const auto emit = [](unsigned jobs) {
    ScopedTrace t(Clock::kVirtual);
    const auto work = [](int i) {
      trace::Span s("test", "w");
      s.at(i * kSecond).lasted(kSecond).arg("i", static_cast<std::int64_t>(i));
    };
    if (jobs == 1) {
      for (int i = 0; i < 32; ++i) work(i);
    } else {
      ThreadPool pool(jobs);
      std::vector<std::future<void>> futures;
      for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([&work, i] { work(i); }));
      for (auto& f : futures) f.get();
    }
    return Tracer::instance().chrome_json();
  };
  const std::string serial = emit(1);
  EXPECT_EQ(serial, emit(4));
  EXPECT_NE(serial.find("\"clock\":\"virtual\""), std::string::npos);
}

TEST(Trace, WallModeRecordsWorkerIds) {
  ScopedTrace t(Clock::kWall);
  EXPECT_EQ(current_worker_id(), 0u);  // main thread is worker 0
  ThreadPool pool(3);
  std::vector<std::future<unsigned>> ids;
  for (int i = 0; i < 8; ++i)
    ids.push_back(pool.submit([] {
      trace::Span s("test", "wall");
      return current_worker_id();
    }));
  for (auto& f : ids) {
    const unsigned id = f.get();
    EXPECT_GE(id, 1u);
    EXPECT_LE(id, 3u);
  }
  for (const TraceEvent& e : Tracer::instance().events()) {
    EXPECT_GE(e.tid, 1u);
    EXPECT_LE(e.tid, 3u);
    EXPECT_GE(e.ts_us, 0);
    EXPECT_GE(e.dur_us, 0);
  }
}

TEST(Trace, OverflowDropsNewestAndCounts) {
  ScopedTrace t(Clock::kVirtual, /*capacity=*/4);
  for (int i = 0; i < 10; ++i) trace::instant("test", "e", i * kSecond);
  EXPECT_EQ(Tracer::instance().events().size(), 4u);
  EXPECT_EQ(Tracer::instance().counters().snapshot().dropped_events, 6u);
}

TEST(Trace, ChromeJsonEscapesArgStrings) {
  ScopedTrace t(Clock::kVirtual);
  trace::instant("test", "esc", 0,
                 trace::Args().add("s", "a\"b\\c\nd\x01").take());
  const std::string json = Tracer::instance().chrome_json();
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd\\u0001"), std::string::npos);
}

TEST(Trace, ChromeJsonCarriesCounterSamples) {
  ScopedTrace t(Clock::kVirtual);
  trace::counters().decode_hits.fetch_add(5, std::memory_order_relaxed);
  trace::counters().decode_misses.fetch_add(2, std::memory_order_relaxed);
  const std::string json = Tracer::instance().chrome_json();
  EXPECT_NE(json.find("{\"name\":\"decode_hits\",\"cat\":\"counter\",\"ph\":"
                      "\"C\",\"pid\":1,\"tid\":0,\"ts\":0,\"args\":{\"value\":"
                      "5}}"),
            std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"otherData\":{\"clock\":\"virtual\"}"),
            std::string::npos);
}

TEST(Telemetry, DerivedRates) {
  search::TelemetrySnapshot t;
  EXPECT_EQ(t.branches_per_sec(), 0.0);
  EXPECT_EQ(t.decode_hit_rate(), 0.0);
  t.counters.branch_attempts = 120;
  t.counters.evaluate_ns = 30ull * kSecond;
  t.counters.classify_ns = 10ull * kSecond;
  EXPECT_DOUBLE_EQ(t.branches_per_sec(), 3.0);
  t.counters.decode_hits = 3;
  t.counters.decode_misses = 1;
  EXPECT_DOUBLE_EQ(t.decode_hit_rate(), 0.75);
}

TEST(Telemetry, StatsBlockIsFixedOrderJsonWithoutWallInVirtualMode) {
  search::TelemetrySnapshot t;
  t.clock = Clock::kVirtual;
  t.wall_us = 1234;
  const std::string json = t.to_json();
  EXPECT_EQ(json.find("{\"clock\":\"virtual\",\"branches_per_sec\":"), 0u);
  EXPECT_EQ(json.find("wall_us"), std::string::npos);
  t.clock = Clock::kWall;
  EXPECT_NE(t.to_json().find("\"wall_us\":1234"), std::string::npos);
}

TEST(Telemetry, AppendStatsSplicesIntoReportJson) {
  search::TelemetrySnapshot t;
  t.counters.branch_attempts = 9;
  const std::string spliced = search::append_stats("{\"algorithm\":\"x\"}", t);
  EXPECT_EQ(spliced.find("{\"algorithm\":\"x\",\"stats\":{"), 0u);
  EXPECT_EQ(spliced.back(), '}');
  EXPECT_NE(spliced.find("\"branch_attempts\":9"), std::string::npos);
}

}  // namespace
}  // namespace turret
