// The paper's 7-server configuration (§V-B): View-Change / New-View messages
// never flow in a healthy run, so lying attacks on them need a scenario in
// which recovery traffic exists — the paper used 7 servers (f = 2) and
// triggered view changes. Here the scenario schedules a benign crash of the
// initial primary; the search then has injection points for ViewChange and
// finds the paper's crash attacks ("two different fields of the View-Change
// message ... cause an assertion and a segmentation fault in all other
// replicas").
#include <gtest/gtest.h>

#include "proxy/proxy.h"
#include "search/algorithms.h"
#include "systems/pbft/pbft_messages.h"
#include "systems/pbft/pbft_scenario.h"

namespace turret {
namespace {

search::Scenario seven_server_scenario() {
  systems::pbft::PbftScenarioOptions opt;
  opt.n = 7;
  opt.f = 2;
  opt.malicious_primary = false;  // malicious backup (replica 1)
  opt.crash_primary_at = 3 * kSecond;
  auto sc = systems::pbft::make_pbft_scenario(opt);
  sc.warmup = 4 * kSecond;  // injection points after the crash
  sc.duration = 25 * kSecond;
  return sc;
}

TEST(SevenServerConfig, ViewChangeTrafficFlowsAfterBenignCrash) {
  const auto sc = seven_server_scenario();
  search::BranchExecutor exec(sc);
  const auto& points = exec.discover();
  bool has_view_change = false;
  for (const auto& ip : points) {
    if (ip.message_name == "ViewChange") has_view_change = true;
  }
  EXPECT_TRUE(has_view_change)
      << "the crash schedule must produce ViewChange injection points";
}

TEST(SevenServerConfig, SystemSurvivesCrashAndKeepsWorking) {
  const auto sc = seven_server_scenario();
  auto w = search::make_scenario_world(sc);
  w.testbed->start();
  w.testbed->run_for(20 * kSecond);
  // Only the scheduled crash, and throughput resumed under the new primary.
  EXPECT_EQ(w.testbed->crashed_nodes().size(), 1u);
  EXPECT_GT(w.testbed->metrics().rate("updates", 12 * kSecond, 20 * kSecond),
            50.0);
}

TEST(SevenServerConfig, LyingOnViewChangeCountsCrashesAllReplicas) {
  const auto sc = seven_server_scenario();
  auto w = search::make_scenario_world(sc);
  proxy::MaliciousAction lie;
  lie.target_tag = systems::pbft::kViewChange;
  lie.message_name = "ViewChange";
  lie.kind = proxy::ActionKind::kLie;
  lie.field_index = 3;  // n_prepared
  lie.field_name = "n_prepared";
  lie.strategy = proxy::LieStrategy::kMin;
  w.proxy->arm(lie);
  w.testbed->start();
  w.testbed->run_for(15 * kSecond);
  // Primary dies benignly at 3 s; the malicious backup's forged View-Change
  // then kills every replica that parses it.
  EXPECT_GE(w.testbed->crashed_nodes().size(), 6u);
}

TEST(SevenServerConfig, SearchFindsViewChangeCrashAttack) {
  auto sc = seven_server_scenario();
  // Focus the schema on the recovery protocol to keep the test fast.
  static const wire::Schema schema = wire::parse_schema(R"(
protocol pbft;
message ViewChange = 8 {
  u32   new_view;
  u32   replica;
  u64   stable_seq;
  i32   n_prepared;
  i32   n_checkpoints;
  bytes proof;
}
message NewView = 9 {
  u32   view;
  u32   primary;
  i32   n_view_changes;
  bytes proof;
}
)");
  sc.schema = &schema;
  sc.actions.lie_random = false;
  sc.actions.duplicate_counts = {2};
  const auto res = search::weighted_greedy_search(sc);
  bool crash_on_vc = false;
  for (const auto& a : res.attacks) {
    if (a.effect == search::AttackEffect::kCrash &&
        a.action.message_name == "ViewChange") {
      crash_on_vc = true;
      EXPECT_TRUE(a.action.field_name == "n_prepared" ||
                  a.action.field_name == "n_checkpoints")
          << a.describe();
    }
  }
  EXPECT_TRUE(crash_on_vc)
      << "the paper's View-Change crash attack must be rediscovered";
}

}  // namespace
}  // namespace turret
