// VM layer tests: machine CPU semantics, crash capture state, memory
// paging, and the page-sharing snapshot manager.
#include <gtest/gtest.h>

#include "vm/machine.h"
#include "vm/memory.h"
#include "vm/snapshot.h"

namespace turret::vm {
namespace {

// A trivial guest for machine tests.
struct EchoGuest : GuestNode {
  int messages = 0;
  int timers = 0;
  void start(GuestContext&) override {}
  void on_message(GuestContext&, NodeId, BytesView) override { ++messages; }
  void on_timer(GuestContext&, std::uint64_t) override { ++timers; }
  void save(serial::Writer& w) const override {
    w.i32(messages);
    w.i32(timers);
  }
  void load(serial::Reader& r) override {
    messages = r.i32();
    timers = r.i32();
  }
  std::string_view kind() const override { return "echo"; }
};

GuestInput msg_input(Duration cost) {
  GuestInput in;
  in.kind = GuestInput::Kind::kMessage;
  in.src = 1;
  in.message = {1, 2, 3};
  in.cost = cost;
  return in;
}

TEST(Machine, IdleCpuAnnouncesCompletion) {
  VirtualMachine m(0, std::make_unique<EchoGuest>(), CpuModel{}, 1);
  auto d = m.enqueue(0, msg_input(100));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 100);
  // Second input queues silently behind the pending one.
  EXPECT_FALSE(m.enqueue(10, msg_input(50)).has_value());
  EXPECT_EQ(m.queued_inputs(), 2u);
}

TEST(Machine, BusyPeriodSerializesInputs) {
  VirtualMachine m(0, std::make_unique<EchoGuest>(), CpuModel{}, 1);
  m.enqueue(0, msg_input(100));
  m.enqueue(0, msg_input(100));
  auto in1 = m.begin_handler(100);
  ASSERT_TRUE(in1.has_value());
  // Handler consumed 40 extra: next completion = 40 (extra) + 100 (cost).
  auto next = m.finish_handler(100, 40);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 140);
  EXPECT_EQ(m.busy_until(), 240);
}

TEST(Machine, CrashDropsQueueAndFutureInputs) {
  VirtualMachine m(0, std::make_unique<EchoGuest>(), CpuModel{}, 1);
  m.enqueue(0, msg_input(100));
  m.enqueue(0, msg_input(100));
  m.mark_crashed(50, "segfault");
  EXPECT_TRUE(m.crashed());
  EXPECT_EQ(m.crash_reason(), "segfault");
  EXPECT_EQ(m.crash_time(), 50);
  EXPECT_EQ(m.queued_inputs(), 0u);
  EXPECT_FALSE(m.begin_handler(100).has_value());  // stale completion
  EXPECT_FALSE(m.enqueue(60, msg_input(10)).has_value());
}

TEST(Machine, PauseResumeRoundTrip) {
  VirtualMachine m(0, std::make_unique<EchoGuest>(), CpuModel{}, 1);
  EXPECT_EQ(m.state(), VmState::kRunning);
  m.pause();
  EXPECT_EQ(m.state(), VmState::kPaused);
  m.resume();
  EXPECT_EQ(m.state(), VmState::kRunning);
  // Crash is sticky: pause/resume cannot revive it.
  m.mark_crashed(1, "x");
  m.pause();
  m.resume();
  EXPECT_TRUE(m.crashed());
}

TEST(Machine, SaveLoadPreservesQueueAndGuest) {
  VirtualMachine a(0, std::make_unique<EchoGuest>(), CpuModel{}, 1);
  a.enqueue(0, msg_input(100));
  a.enqueue(0, msg_input(70));
  static_cast<EchoGuest&>(a.guest()).messages = 5;
  serial::Writer w;
  a.save(w);

  VirtualMachine b(0, std::make_unique<EchoGuest>(), CpuModel{}, 999);
  serial::Reader r(w.data());
  b.load(r);
  EXPECT_EQ(b.queued_inputs(), 2u);
  EXPECT_EQ(b.busy_until(), a.busy_until());
  EXPECT_EQ(static_cast<EchoGuest&>(b.guest()).messages, 5);
  // RNG state transferred: next draws are identical.
  EXPECT_EQ(a.rng().next_u64(), b.rng().next_u64());
}

// --- Memory images ---------------------------------------------------------

MemoryProfile small_profile() {
  MemoryProfile p;
  p.os_pages = 16;
  p.app_pages = 8;
  p.unique_pages = 8;
  return p;
}

TEST(MemoryImage, LayoutAndGuestStateRoundTrip) {
  const MemoryProfile p = small_profile();
  Bytes state = to_bytes("guest protocol state, longer than one line");
  MemoryImage img;
  img.materialize(p, 1, state);
  EXPECT_EQ(img.page_count(), 16u + 8 + 1 + 8);
  EXPECT_EQ(img.extract_guest_state(), state);
}

TEST(MemoryImage, OsPagesIdenticalAcrossVms) {
  const MemoryProfile p = small_profile();
  MemoryImage a, b;
  a.materialize(p, 1, to_bytes("aaa"));
  b.materialize(p, 2, to_bytes("bbbbbb"));
  for (std::size_t i = 0; i < p.os_pages + p.app_pages; ++i) {
    EXPECT_EQ(a.page_hash(i), b.page_hash(i)) << "page " << i;
  }
  // Unique region differs.
  EXPECT_NE(a.page_hash(a.page_count() - 1), b.page_hash(b.page_count() - 1));
}

// --- Snapshot manager -------------------------------------------------------

std::vector<MemoryImage> make_fleet(std::size_t n) {
  std::vector<MemoryImage> fleet(n);
  const MemoryProfile p = small_profile();
  for (std::size_t i = 0; i < n; ++i) {
    fleet[i].materialize(p, i + 1,
                         to_bytes("state of vm #" + std::to_string(i)));
  }
  return fleet;
}

std::vector<const MemoryImage*> const_ptrs(const std::vector<MemoryImage>& v) {
  std::vector<const MemoryImage*> out;
  for (const auto& m : v) out.push_back(&m);
  return out;
}

TEST(Snapshot, PlainSaveLoadRoundTrips) {
  auto fleet = make_fleet(3);
  MemoryBlobStore store;
  const auto ptrs = const_ptrs(fleet);
  const SaveReport rep = SnapshotManager::save_plain(ptrs, store, "t");
  EXPECT_EQ(rep.total_pages, 3 * fleet[0].page_count());
  EXPECT_EQ(rep.shared_pages, 0u);

  std::vector<MemoryImage> restored(3);
  std::vector<MemoryImage*> rp{&restored[0], &restored[1], &restored[2]};
  SnapshotManager::load_plain(rp, store, "t");
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(restored[i].raw(), fleet[i].raw()) << "vm " << i;
    EXPECT_EQ(restored[i].extract_guest_state(), fleet[i].extract_guest_state());
  }
}

TEST(Snapshot, SharedSaveDeduplicatesOsPages) {
  auto fleet = make_fleet(5);
  MemoryBlobStore plain_store, shared_store;
  const auto ptrs = const_ptrs(fleet);
  const SaveReport plain = SnapshotManager::save_plain(ptrs, plain_store, "p");
  const SaveReport shared = SnapshotManager::save_shared(ptrs, shared_store, "s");

  // 24 sharable pages per VM (os+app) of 33 total: substantial reduction.
  EXPECT_GT(shared.shared_pages, 5u * 20);
  EXPECT_LT(shared.bytes_written, plain.bytes_written * 0.6)
      << "plain=" << plain.bytes_written << " shared=" << shared.bytes_written;
  // The shared map holds each distinct page once.
  EXPECT_LE(shared.shared_unique, 24u + 2);
}

TEST(Snapshot, SharedSaveLoadRoundTrips) {
  auto fleet = make_fleet(4);
  MemoryBlobStore store;
  SnapshotManager::save_shared(const_ptrs(fleet), store, "t");
  std::vector<MemoryImage> restored(4);
  std::vector<MemoryImage*> rp;
  for (auto& m : restored) rp.push_back(&m);
  SnapshotManager::load_shared(rp, store, "t");
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(restored[i].raw(), fleet[i].raw()) << "vm " << i;
    EXPECT_EQ(restored[i].extract_guest_state(), fleet[i].extract_guest_state());
  }
}

TEST(Snapshot, SharedModeHandlesSingleVm) {
  auto fleet = make_fleet(1);
  MemoryBlobStore store;
  const SaveReport rep =
      SnapshotManager::save_shared(const_ptrs(fleet), store, "solo");
  EXPECT_EQ(rep.shared_pages, 0u) << "nothing to share across one VM";
  std::vector<MemoryImage> restored(1);
  std::vector<MemoryImage*> rp{&restored[0]};
  SnapshotManager::load_shared(rp, store, "solo");
  EXPECT_EQ(restored[0].raw(), fleet[0].raw());
}

TEST(Snapshot, FileStoreRoundTrips) {
  auto fleet = make_fleet(2);
  FileBlobStore store("/tmp/turret_test_snapshots");
  SnapshotManager::save_shared(const_ptrs(fleet), store, "f");
  EXPECT_TRUE(store.contains("f.shared"));
  EXPECT_TRUE(store.contains("f.vm0"));
  std::vector<MemoryImage> restored(2);
  std::vector<MemoryImage*> rp{&restored[0], &restored[1]};
  SnapshotManager::load_shared(rp, store, "f");
  EXPECT_EQ(restored[0].raw(), fleet[0].raw());
  EXPECT_EQ(restored[1].raw(), fleet[1].raw());
}

// Property: shared-mode reduction grows with fleet size (more VMs share the
// same OS image).
class SnapshotScaling : public ::testing::TestWithParam<int> {};

TEST_P(SnapshotScaling, ReductionGrowsWithFleet) {
  const int n = GetParam();
  auto fleet = make_fleet(static_cast<std::size_t>(n));
  MemoryBlobStore plain_store, shared_store;
  const auto ptrs = const_ptrs(fleet);
  const auto plain = SnapshotManager::save_plain(ptrs, plain_store, "p");
  const auto shared = SnapshotManager::save_shared(ptrs, shared_store, "s");
  const double ratio = static_cast<double>(shared.bytes_written) /
                       static_cast<double>(plain.bytes_written);
  // With 24/33 sharable pages, the ratio tends to (9 + 24/n)/33.
  const double expected = (9.0 + 24.0 / n) / 33.0;
  EXPECT_NEAR(ratio, expected, 0.06) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(FleetSizes, SnapshotScaling,
                         ::testing::Values(2, 5, 10, 15));

}  // namespace
}  // namespace turret::vm
