// wire: schema parser, codec, codegen, and mutation-compatibility tests.
#include <gtest/gtest.h>

#include <fstream>
#include <limits>
#include <sstream>

#include "common/rng.h"
#include "proxy/proxy.h"
#include "systems/aardvark/aardvark_scenario.h"
#include "systems/pbft/pbft_messages.h"
#include "systems/pbft/pbft_scenario.h"
#include "systems/prime/prime_scenario.h"
#include "systems/steward/steward_scenario.h"
#include "systems/zyzzyva/zyzzyva_scenario.h"
#include "wire/codegen.h"
#include "wire/message.h"
#include "wire/schema.h"

namespace turret::wire {
namespace {

constexpr char kTestSchema[] = R"(
protocol demo;
# a comment
message Ping = 1 {
  u32   nonce;
  bytes data;       // trailing comment
}
message Pong = 2 {
  bool  ok;
  i16   code;
  f64   value;
}
)";

TEST(SchemaParser, ParsesValidSchema) {
  const Schema s = parse_schema(kTestSchema);
  EXPECT_EQ(s.protocol(), "demo");
  ASSERT_EQ(s.messages().size(), 2u);
  const MessageSpec* ping = s.by_name("Ping");
  ASSERT_NE(ping, nullptr);
  EXPECT_EQ(ping->tag, 1u);
  ASSERT_EQ(ping->fields.size(), 2u);
  EXPECT_EQ(ping->fields[0].name, "nonce");
  EXPECT_EQ(ping->fields[0].type, FieldType::kU32);
  EXPECT_EQ(ping->fields[1].type, FieldType::kBytes);
  EXPECT_EQ(s.by_tag(2)->name, "Pong");
  EXPECT_EQ(s.by_tag(99), nullptr);
  EXPECT_EQ(ping->field_index("data"), 1u);
  EXPECT_EQ(ping->field_index("nope"), std::nullopt);
}

TEST(SchemaParser, RejectsSyntaxErrors) {
  EXPECT_THROW(parse_schema("message X = 1 { }"), WireError);       // no protocol
  EXPECT_THROW(parse_schema("protocol p;"), WireError);             // no messages
  EXPECT_THROW(parse_schema("protocol p; message A = 1 { u99 x; }"), WireError);
  EXPECT_THROW(parse_schema("protocol p; message A = 1 { u32 x }"), WireError);
  EXPECT_THROW(parse_schema("protocol p; message A = 70000 { u32 x; }"),
               WireError);  // tag > u16
}

TEST(SchemaParser, RejectsDuplicates) {
  EXPECT_THROW(parse_schema(R"(protocol p;
    message A = 1 { u32 x; }
    message A = 2 { u32 x; })"),
               WireError);
  EXPECT_THROW(parse_schema(R"(protocol p;
    message A = 1 { u32 x; }
    message B = 1 { u32 x; })"),
               WireError);
  EXPECT_THROW(parse_schema("protocol p; message A = 1 { u32 x; u8 x; }"),
               WireError);
}

TEST(SchemaParser, ErrorsCarryLineNumbers) {
  try {
    parse_schema("protocol p;\nmessage A = 1 {\n  u99 x;\n}");
    FAIL() << "expected WireError";
  } catch (const WireError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(WireCodec, EncodeDecodeRoundTrip) {
  const Schema s = parse_schema(kTestSchema);
  DecodedMessage msg;
  msg.spec = s.by_name("Pong");
  msg.values = {Value::of_bool(true), Value::of_signed(-42),
                Value::of_double(2.5)};
  const Bytes wire = encode(msg);
  EXPECT_EQ(peek_tag(wire), 2u);
  const DecodedMessage back = decode(s, wire);
  EXPECT_EQ(back.values, msg.values);
}

TEST(WireCodec, DecodeRejectsUnknownTagAndTrailing) {
  const Schema s = parse_schema(kTestSchema);
  EXPECT_THROW(decode(s, Bytes{0x63, 0x00}), WireError);  // tag 99
  DecodedMessage msg;
  msg.spec = s.by_name("Ping");
  msg.values = {Value::of_unsigned(7), Value::of_bytes({1, 2})};
  Bytes wire = encode(msg);
  wire.push_back(0);  // junk trailing byte
  EXPECT_THROW(decode(s, wire), WireError);
  EXPECT_THROW(peek_tag(Bytes{0x01}), WireError);
}

TEST(WireCodec, IntegerNarrowingWrapsLikeC) {
  const Schema s = parse_schema("protocol p; message M = 1 { u8 x; i16 y; }");
  DecodedMessage msg;
  msg.spec = s.by_tag(1);
  msg.values = {Value::of_unsigned(0x1ff), Value::of_signed(-70000)};
  const DecodedMessage back = decode(s, encode(msg));
  EXPECT_EQ(back.values[0].as_unsigned(), 0xffu);  // 0x1ff mod 256
  EXPECT_EQ(back.values[1].as_signed(), static_cast<std::int16_t>(-70000));
}

TEST(WireCodec, NegativeIntoUnsignedFieldReadsHuge) {
  // The mechanism behind the paper's crash attacks: a lied -1 into a u32
  // length field reads back as 4294967295.
  const Schema s = parse_schema("protocol p; message M = 1 { u32 len; }");
  DecodedMessage msg;
  msg.spec = s.by_tag(1);
  msg.values = {Value::of_signed(-1)};
  const DecodedMessage back = decode(s, encode(msg));
  EXPECT_EQ(back.values[0].as_unsigned(), 0xffffffffu);
}

TEST(WireCodec, MessageWriterMatchesSchemaDecode) {
  const Schema s = parse_schema(kTestSchema);
  const Bytes wire =
      MessageWriter(1).u32(0xabcd).bytes(Bytes{5, 6, 7}).take();
  const DecodedMessage m = decode(s, wire);
  EXPECT_EQ(m.spec->name, "Ping");
  EXPECT_EQ(m.values[0].as_unsigned(), 0xabcdu);
  EXPECT_EQ(m.values[1].as_bytes(), (Bytes{5, 6, 7}));
}

TEST(WireCodegen, EmitsCompilableShape) {
  const Schema s = parse_schema(kTestSchema);
  const std::string code = generate_cpp(s);
  EXPECT_NE(code.find("namespace gen::demo"), std::string::npos);
  EXPECT_NE(code.find("struct Ping"), std::string::npos);
  EXPECT_NE(code.find("static constexpr turret::wire::TypeTag kTag = 1;"),
            std::string::npos);
  EXPECT_NE(code.find("turret::Bytes encode() const"), std::string::npos);
  EXPECT_NE(code.find("static Pong decode(turret::BytesView wire)"),
            std::string::npos);
  // Deterministic output.
  EXPECT_EQ(code, generate_cpp(s));
}

TEST(FieldTypes, NamesRoundTrip) {
  for (FieldType t :
       {FieldType::kBool, FieldType::kI8, FieldType::kI16, FieldType::kI32,
        FieldType::kI64, FieldType::kU8, FieldType::kU16, FieldType::kU32,
        FieldType::kU64, FieldType::kF32, FieldType::kF64, FieldType::kBytes}) {
    EXPECT_EQ(field_type_from_name(field_type_name(t)), t);
  }
  EXPECT_EQ(field_type_from_name("u128"), std::nullopt);
}

TEST(FieldTypes, IntegerRanges) {
  EXPECT_EQ(integer_min(FieldType::kI8), -128);
  EXPECT_EQ(integer_max(FieldType::kI8), 127u);
  EXPECT_EQ(integer_min(FieldType::kU32), 0);
  EXPECT_EQ(integer_max(FieldType::kU32), 0xffffffffu);
  EXPECT_TRUE(is_signed_integer(FieldType::kI64));
  EXPECT_TRUE(is_unsigned_integer(FieldType::kU16));
  EXPECT_TRUE(is_float(FieldType::kF32));
  EXPECT_FALSE(is_integer(FieldType::kBytes));
}

// --- Guest codecs must match the schemas handed to Turret -----------------
// These are the load-bearing compatibility tests: if a guest's hand-written
// encoder diverges from the `.msg` description, the proxy would mutate the
// wrong bytes.

TEST(SchemaCompat, PbftPrePrepareMatchesSchema) {
  using namespace systems::pbft;
  PrePrepare pp;
  pp.view = 3;
  pp.seq = 77;
  pp.primary = 1;
  pp.batch_size = 4;
  pp.digest = Bytes{1, 2};
  pp.payload = Bytes{9, 9, 9};
  const DecodedMessage m = decode(pbft_schema(), pp.encode());
  EXPECT_EQ(m.spec->name, "PrePrepare");
  EXPECT_EQ(m.values[0].as_unsigned(), 3u);
  EXPECT_EQ(m.values[1].as_unsigned(), 77u);
  EXPECT_EQ(m.values[3].as_signed(), 4);
  EXPECT_EQ(m.values[5].as_bytes(), (Bytes{9, 9, 9}));
}

// Every message type a guest can emit must decode against its schema. Run a
// real benign execution of each system with a schema-checking interceptor.
class SchemaConformance : public ::testing::TestWithParam<const char*> {};

TEST_P(SchemaConformance, AllTrafficDecodes) {
  // Covered thoroughly by test_search.cpp's end-to-end runs; here we verify
  // the static schemas parse and expose the expected message sets.
  const std::string which = GetParam();
  const Schema* s = nullptr;
  if (which == "pbft") s = &systems::pbft::pbft_schema();
  if (which == "zyzzyva") s = &systems::zyzzyva::zyzzyva_schema();
  if (which == "steward") s = &systems::steward::steward_schema();
  if (which == "prime") s = &systems::prime::prime_schema();
  if (which == "aardvark") s = &systems::aardvark::aardvark_schema();
  ASSERT_NE(s, nullptr);
  EXPECT_GE(s->messages().size(), 7u);
  for (const MessageSpec& m : s->messages()) {
    EXPECT_FALSE(m.fields.empty()) << m.name;
    EXPECT_EQ(s->by_tag(m.tag), &m);
  }
}

INSTANTIATE_TEST_SUITE_P(Systems, SchemaConformance,
                         ::testing::Values("pbft", "zyzzyva", "steward",
                                           "prime", "aardvark"));

// --- Property sweep over formats/*.msg ------------------------------------
// The codec's canonical-encoding property: for every schema shipped in
// formats/, any decodable wire message re-encodes byte-identically —
// encode(decode(e)) == e. Exercised with seeded-random field values, the
// min/max boundary values the proxy's lying actions put on the wire, and
// messages mutated through mutate_field itself.

Schema load_format_schema(const std::string& name) {
  const std::string path = std::string(TURRET_FORMATS_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return parse_schema(text.str());
}

Value random_value(FieldType t, Rng& rng) {
  switch (t) {
    case FieldType::kBool:
      return Value::of_bool(rng.next_bool());
    case FieldType::kI8:
    case FieldType::kI16:
    case FieldType::kI32:
    case FieldType::kI64:
      if (t == FieldType::kI64) {
        return Value::of_signed(static_cast<std::int64_t>(rng.next_u64()));
      }
      return Value::of_signed(rng.next_range(
          integer_min(t), static_cast<std::int64_t>(integer_max(t))));
    case FieldType::kU8:
    case FieldType::kU16:
    case FieldType::kU32:
    case FieldType::kU64:
      if (t == FieldType::kU64) return Value::of_unsigned(rng.next_u64());
      return Value::of_unsigned(rng.next_u64() % (integer_max(t) + 1));
    case FieldType::kF32:
      // Must survive the f32 round trip bit-exactly: start from a float.
      return Value::of_double(
          static_cast<float>((rng.next_double() - 0.5) * 1e6));
    case FieldType::kF64:
      return Value::of_double((rng.next_double() - 0.5) * 1e12);
    case FieldType::kBytes: {
      Bytes b(rng.next_below(33));
      for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.next_u64());
      return Value::of_bytes(std::move(b));
    }
  }
  return Value();
}

Value boundary_value(FieldType t, bool high) {
  switch (t) {
    case FieldType::kBool:
      return Value::of_bool(high);
    case FieldType::kI8:
    case FieldType::kI16:
    case FieldType::kI32:
    case FieldType::kI64:
      return Value::of_signed(high ? static_cast<std::int64_t>(integer_max(t))
                                   : integer_min(t));
    case FieldType::kU8:
    case FieldType::kU16:
    case FieldType::kU32:
    case FieldType::kU64:
      return Value::of_unsigned(high ? integer_max(t) : 0);
    case FieldType::kF32:
      return Value::of_double(high ? std::numeric_limits<float>::max()
                                   : std::numeric_limits<float>::lowest());
    case FieldType::kF64:
      return Value::of_double(high ? std::numeric_limits<double>::max()
                                   : std::numeric_limits<double>::lowest());
    case FieldType::kBytes:
      return Value::of_bytes(high ? Bytes(1024, 0xab) : Bytes{});
  }
  return Value();
}

void expect_canonical(const Schema& schema, const DecodedMessage& msg) {
  const Bytes e1 = encode(msg);
  const DecodedMessage d = decode(schema, e1);
  const Bytes e2 = encode(d);
  EXPECT_EQ(e1, e2) << msg.spec->name << ": re-encode diverged";
  EXPECT_EQ(d.spec, msg.spec);
}

class FormatProperties : public ::testing::TestWithParam<const char*> {};

TEST_P(FormatProperties, RandomInstancesRoundTripByteIdentically) {
  const Schema schema = load_format_schema(GetParam());
  ASSERT_FALSE(schema.messages().empty());
  Rng rng(0xC0FFEE);
  for (const MessageSpec& spec : schema.messages()) {
    for (int i = 0; i < 50; ++i) {
      DecodedMessage msg;
      msg.spec = &spec;
      for (const FieldSpec& f : spec.fields)
        msg.values.push_back(random_value(f.type, rng));
      expect_canonical(schema, msg);
    }
  }
}

TEST_P(FormatProperties, BoundaryValuesRoundTripByteIdentically) {
  const Schema schema = load_format_schema(GetParam());
  for (const MessageSpec& spec : schema.messages()) {
    for (const bool high : {false, true}) {
      DecodedMessage msg;
      msg.spec = &spec;
      for (const FieldSpec& f : spec.fields)
        msg.values.push_back(boundary_value(f.type, high));
      expect_canonical(schema, msg);
    }
  }
}

TEST_P(FormatProperties, LyingMutationsStayCanonical) {
  // The proxy's min/max lies write exactly the boundary patterns the codec
  // must re-encode faithfully; push every field of every message through
  // both and demand the canonical property still holds.
  const Schema schema = load_format_schema(GetParam());
  Rng value_rng(0xBEEF);
  Rng lie_rng(1);
  for (const MessageSpec& spec : schema.messages()) {
    for (std::uint32_t fi = 0; fi < spec.fields.size(); ++fi) {
      if (spec.fields[fi].type == FieldType::kBytes) continue;  // no lies
      for (const proxy::LieStrategy strat :
           {proxy::LieStrategy::kMin, proxy::LieStrategy::kMax}) {
        DecodedMessage msg;
        msg.spec = &spec;
        for (const FieldSpec& f : spec.fields)
          msg.values.push_back(random_value(f.type, value_rng));
        const Bytes before = encode(msg);
        DecodedMessage mutated = decode(schema, before);
        proxy::mutate_field(mutated, fi, strat, 0, lie_rng);
        expect_canonical(schema, mutated);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, FormatProperties,
                         ::testing::Values("pbft.msg", "zyzzyva.msg",
                                           "steward.msg", "prime.msg",
                                           "aardvark.msg"));

}  // namespace
}  // namespace turret::wire
