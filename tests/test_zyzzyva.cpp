// Zyzzyva system tests: fast-path latency, slow-path fallback under reply
// loss, crash surfaces, and snapshot determinism.
#include <gtest/gtest.h>

#include "proxy/proxy.h"
#include "search/executor.h"
#include "systems/zyzzyva/zyzzyva_messages.h"
#include "systems/zyzzyva/zyzzyva_scenario.h"

namespace turret {
namespace {

using systems::zyzzyva::ZyzzyvaScenarioOptions;
using systems::zyzzyva::make_zyzzyva_scenario;

TEST(ZyzzyvaBenign, FastPathLatency) {
  const auto sc = make_zyzzyva_scenario();
  auto w = search::make_scenario_world(sc);
  w.testbed->start();
  w.testbed->run_for(10 * kSecond);
  const auto lat =
      w.testbed->metrics().summary("latency_ms", 2 * kSecond, 8 * kSecond);
  ASSERT_GT(lat.count, 100u);
  // Paper: min/avg/max 3.90/3.95/4.02 ms on a 1 ms LAN.
  EXPECT_GT(lat.mean(), 3.0);
  EXPECT_LT(lat.mean(), 5.0);
  EXPECT_LT(lat.max - lat.min, 1.0) << "benign latency should be tight";
}

TEST(ZyzzyvaAttack, DroppingSpecRepliesForcesSlowPath) {
  const auto sc = make_zyzzyva_scenario();  // malicious backup (replica 3)
  auto w = search::make_scenario_world(sc);

  proxy::MaliciousAction drop;
  drop.target_tag = systems::zyzzyva::kSpecReply;
  drop.message_name = "SpecReply";
  drop.kind = proxy::ActionKind::kDrop;
  drop.drop_probability = 1.0;
  w.proxy->arm(drop);

  w.testbed->start();
  w.testbed->run_for(10 * kSecond);
  const auto lat =
      w.testbed->metrics().summary("latency_ms", 2 * kSecond, 8 * kSecond);
  ASSERT_GT(lat.count, 50u);
  // Paper: avg latency rises from 3.95 ms to 5.32 ms (≈ +35%).
  EXPECT_GT(lat.mean(), 4.8);
  EXPECT_LT(lat.mean(), 8.0);
  EXPECT_TRUE(w.testbed->crashed_nodes().empty());
}

TEST(ZyzzyvaAttack, LyingOnHistorySizeCrashesReplicas) {
  ZyzzyvaScenarioOptions opt;
  opt.malicious_primary = true;
  const auto sc = make_zyzzyva_scenario(opt);
  auto w = search::make_scenario_world(sc);

  proxy::MaliciousAction lie;
  lie.target_tag = systems::zyzzyva::kOrderRequest;
  lie.message_name = "OrderRequest";
  lie.kind = proxy::ActionKind::kLie;
  lie.field_index = 3;  // history_size
  lie.field_name = "history_size";
  lie.strategy = proxy::LieStrategy::kMin;
  w.proxy->arm(lie);

  w.testbed->start();
  w.testbed->run_for(5 * kSecond);
  EXPECT_EQ(w.testbed->crashed_nodes().size(), 3u)
      << "all benign replicas should die on the forged size";
}

TEST(ZyzzyvaRecovery, ViewChangeReproposesPendingSafely) {
  // Regression: entering a view used to iterate pending_ while order() →
  // spec_execute() erased from it (iterator invalidation under a primary
  // that drops OrderRequests until evicted).
  ZyzzyvaScenarioOptions opt;
  opt.malicious_primary = true;
  const auto sc = make_zyzzyva_scenario(opt);
  auto w = search::make_scenario_world(sc);

  proxy::MaliciousAction drop;
  drop.target_tag = systems::zyzzyva::kOrderRequest;
  drop.kind = proxy::ActionKind::kDrop;
  drop.drop_probability = 1.0;
  w.proxy->arm(drop);

  w.testbed->start();
  w.testbed->run_for(20 * kSecond);
  EXPECT_TRUE(w.testbed->crashed_nodes().empty());
  const double late =
      w.testbed->metrics().rate("updates", 12 * kSecond, 20 * kSecond);
  EXPECT_GT(late, 50.0) << "view change must evict the muting primary";
}

TEST(ZyzzyvaDeterminism, SnapshotRestoreReplaysIdentically) {
  const auto sc = make_zyzzyva_scenario();
  auto a = search::make_scenario_world(sc);
  a.testbed->start();
  a.testbed->run_for(6 * kSecond);

  auto b1 = search::make_scenario_world(sc);
  b1.testbed->start();
  b1.testbed->run_for(3 * kSecond);
  const Bytes snap = b1.testbed->save_snapshot();
  auto b2 = search::make_scenario_world(sc);
  b2.testbed->load_snapshot(snap);
  b2.testbed->run_until(6 * kSecond);

  EXPECT_EQ(a.testbed->metrics().total("updates", 0, 6 * kSecond),
            b2.testbed->metrics().total("updates", 0, 6 * kSecond));
  for (NodeId id = 0; id < 5; ++id) {
    serial::Writer wa, wb;
    a.testbed->machine(id).guest().save(wa);
    b2.testbed->machine(id).guest().save(wb);
    EXPECT_EQ(wa.data(), wb.data()) << "node " << id;
  }
}

}  // namespace
}  // namespace turret
